"""Command-line experiment runner.

Subcommands::

    python -m repro.experiments run <name> [...] [--workers N] [--scale S]
                                    [--out DIR] [--seed N] [--force]
                                    [--backend sim|aio] [--dist N]
                                    [--kernel numpy|compiled] [--matrix SPEC ...]
    python -m repro.experiments coordinate <name> [--host H] [--port P]
                                    [--transport plain|secure] [--keyfile K]
                                    [--authorized-keys A] [--scale S] [...]
    python -m repro.experiments worker --port P [--host H] [--matrix SPEC]
                                    [--transport plain|secure] [--keyfile K]
                                    [--coordinator-key PUB] [...]
    python -m repro.experiments keygen PATH
    python -m repro.experiments report --matrix SPEC [--results DIR] [...]
    python -m repro.experiments list

``run`` executes registered experiments through the parallel runner and
writes canonical JSON artifacts (default: ``results/``); artifacts matching
the requested (experiment, scale, seed) are re-used unless ``--force``.
``--backend aio`` drives the overlay experiments (figs. 11-15) over the
asyncio localhost-TCP backend instead of the discrete-event simulator; the
structural fields land in ``<name>.parity.json`` for cross-backend
comparison.  ``--dist N`` shards the trials across ``N`` local worker
processes through the distributed coordinator instead of the in-process
pool.  ``coordinate`` / ``worker`` run the two halves of the distributed
subsystem separately (the coordinator leases trial chunks over TCP and
merges the results into the same canonical artifact); ``--host`` takes
either side off localhost, and ``--transport secure`` mounts the frames on
the authenticated :mod:`repro.net` channel using key files from ``keygen``
(see ``docs/deployment.md`` for the fleet handbook).  ``list`` prints
every registered experiment.

``--matrix SPEC`` registers the cells of a scenario-matrix spec file
(:mod:`repro.experiments.scenarios`) before dispatch; with ``run`` and no
explicit names, all of the matrix's cells run.  ``report`` merges the cell
artifacts of a matrix into ``scenario_report.json`` plus a markdown page
(:mod:`repro.experiments.report`), with optional baseline-delta and
bench-trajectory sections.

The legacy invocation ``python -m repro.experiments [fig07 ...] [--scale S]``
still works: it runs the named figures inline and prints their tables.
"""

from __future__ import annotations

import argparse

from ..overlay.runtime import SUBSTRATE_BACKENDS
from .registry import experiment_names, get_experiment
from .runner import DEFAULT_RESULTS_DIR, run_experiment
from .tables import format_table

_SUBCOMMANDS = ("run", "list", "coordinate", "worker", "report", "keygen")

#: Wire transports the distributed subcommands accept (mirrors
#: :data:`repro.experiments.distributed.TRANSPORTS`).
_TRANSPORT_CHOICES = ("plain", "secure")


def _positive_float(raw: str) -> float:
    value = float(raw)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {raw}")
    return value


def main(argv: list[str] | None = None) -> int:
    import sys

    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _dispatch(argv)
    return _legacy_main(argv)


def _dispatch(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run experiments through the parallel runner"
    )
    run_parser.add_argument(
        "names",
        nargs="*",
        metavar="name",
        help="registered experiment names (see the 'list' subcommand); "
        "defaults to every cell of the --matrix spec(s) when omitted",
    )
    run_parser.add_argument(
        "--matrix",
        action="append",
        default=None,
        metavar="SPEC",
        help="scenario-matrix spec file whose cells to register (repeatable)",
    )
    # Validated in _run_command (not via argparse type=) so that a bad count
    # is a one-line stderr error like the unknown-name/unsupported-backend
    # cases, not a usage dump.
    run_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default: 1)"
    )
    run_parser.add_argument(
        "--dist",
        type=int,
        default=None,
        metavar="N",
        help="shard trials across N local worker processes via the "
        "distributed coordinator (see the 'coordinate'/'worker' subcommands)",
    )
    run_parser.add_argument(
        "--scale",
        type=_positive_float,
        default=1.0,
        help="trial-count scale factor (1.0 = the paper's full counts)",
    )
    run_parser.add_argument(
        "--out",
        default=str(DEFAULT_RESULTS_DIR),
        help="artifact directory (default: results/)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment's base seed"
    )
    run_parser.add_argument(
        "--backend",
        choices=SUBSTRATE_BACKENDS,
        default="sim",
        help="overlay transport backend for figs. 11-15: 'sim' (discrete-event, "
        "default) or 'aio' (asyncio localhost TCP)",
    )
    # Validated in _run_command via the runner's validate_scheme so an
    # unsupported scheme/backend pairing is a one-line exit-2 error listing
    # the supported schemes, not a usage dump.
    run_parser.add_argument(
        "--scheme",
        default=None,
        metavar="NAME",
        help="restrict a scheme-capable experiment (figs. 11-15) to one "
        "registered protocol runtime (slicing, onion, onion-erasure, sphinx)",
    )
    # Validated in _run_command via the runner's validate_kernel so a
    # missing compiled backend is a one-line exit-2 error, not a traceback.
    run_parser.add_argument(
        "--kernel",
        default=None,
        metavar="NAME",
        help="GF(2^8) kernel trials execute with: 'numpy' (reference) or "
        "'compiled' (numba/cext, requires the 'fast' extra or a C "
        "toolchain); results are bit-identical either way",
    )
    run_parser.add_argument(
        "--transport",
        choices=_TRANSPORT_CHOICES,
        default="plain",
        help="wire transport for --dist runs: 'plain' (default) or 'secure' "
        "(authenticated Noise-style channel with auto-generated throwaway "
        "keys); artifacts are byte-identical either way",
    )
    run_parser.add_argument(
        "--force",
        action="store_true",
        help="recompute even if a matching artifact exists",
    )

    coordinate_parser = subparsers.add_parser(
        "coordinate",
        help="lease one experiment's trials to TCP workers and merge the rows",
    )
    coordinate_parser.add_argument(
        "name", help="registered experiment name (see the 'list' subcommand)"
    )
    coordinate_parser.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default: 127.0.0.1)"
    )
    coordinate_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (default: 0 = pick a free port and print it)",
    )
    coordinate_parser.add_argument(
        "--scale",
        type=_positive_float,
        default=1.0,
        help="trial-count scale factor (1.0 = the paper's full counts)",
    )
    coordinate_parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment's base seed"
    )
    coordinate_parser.add_argument(
        "--out",
        default=str(DEFAULT_RESULTS_DIR),
        help="artifact directory (default: results/)",
    )
    coordinate_parser.add_argument(
        "--backend",
        choices=SUBSTRATE_BACKENDS,
        default="sim",
        help="overlay transport backend workers run trials on (default: sim)",
    )
    coordinate_parser.add_argument(
        "--scheme",
        default=None,
        metavar="NAME",
        help="restrict a scheme-capable experiment to one protocol runtime",
    )
    coordinate_parser.add_argument(
        "--kernel",
        default=None,
        metavar="NAME",
        help="GF(2^8) kernel workers execute trials with (numpy or compiled)",
    )
    coordinate_parser.add_argument(
        "--chunk", type=int, default=1, help="trial indices per lease (default: 1)"
    )
    coordinate_parser.add_argument(
        "--lease-seconds",
        type=float,
        default=120.0,
        help="lease lifetime before unreturned trials are re-dispatched "
        "(default: 120)",
    )
    coordinate_parser.add_argument(
        "--min-workers",
        type=int,
        default=1,
        help="hold the first lease until this many workers have joined (default: 1)",
    )
    coordinate_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="abort if the run has not completed after this many seconds",
    )
    coordinate_parser.add_argument(
        "--matrix",
        action="append",
        default=None,
        metavar="SPEC",
        help="scenario-matrix spec file whose cells to register (repeatable)",
    )
    coordinate_parser.add_argument(
        "--transport",
        choices=_TRANSPORT_CHOICES,
        default="plain",
        help="wire transport workers must speak: 'plain' (default) or "
        "'secure' (requires --keyfile and --authorized-keys)",
    )
    coordinate_parser.add_argument(
        "--keyfile",
        default=None,
        metavar="PATH",
        help="coordinator static secret key file (see the 'keygen' subcommand)",
    )
    coordinate_parser.add_argument(
        "--authorized-keys",
        default=None,
        metavar="PATH",
        help="allowlist of authorized worker public keys, one hex key per line",
    )
    coordinate_parser.add_argument(
        "--force",
        action="store_true",
        help="recompute even if a matching artifact exists",
    )

    worker_parser = subparsers.add_parser(
        "worker", help="execute leased trials for a coordinator"
    )
    worker_parser.add_argument(
        "--host", default="127.0.0.1", help="coordinator host (default: 127.0.0.1)"
    )
    worker_parser.add_argument(
        "--port", type=int, required=True, help="coordinator port"
    )
    worker_parser.add_argument(
        "--label", default=None, help="worker name shown in coordinator logs"
    )
    worker_parser.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        help="seconds to keep retrying the initial connect (default: 10)",
    )
    worker_parser.add_argument(
        "--crash-after-leases",
        type=int,
        default=None,
        metavar="N",
        help="fault injection: die abruptly upon receiving lease N+1 "
        "(exercises the coordinator's re-dispatch path)",
    )
    worker_parser.add_argument(
        "--matrix",
        action="append",
        default=None,
        metavar="SPEC",
        help="scenario-matrix spec file whose cells to register before "
        "serving leases (remote workers that did not inherit "
        "REPRO_SCENARIO_MATRIX)",
    )
    worker_parser.add_argument(
        "--transport",
        choices=_TRANSPORT_CHOICES,
        default="plain",
        help="wire transport to the coordinator: 'plain' (default) or "
        "'secure' (requires --keyfile and --coordinator-key)",
    )
    worker_parser.add_argument(
        "--keyfile",
        default=None,
        metavar="PATH",
        help="worker static secret key file (see the 'keygen' subcommand)",
    )
    worker_parser.add_argument(
        "--coordinator-key",
        default=None,
        metavar="PATH",
        help="the coordinator's public key file (<keyfile>.pub on its host)",
    )

    keygen_parser = subparsers.add_parser(
        "keygen",
        help="generate a static transport keypair for the secure transport",
    )
    keygen_parser.add_argument(
        "path",
        metavar="PATH",
        help="secret key file to create (mode 0600); the public key lands "
        "in PATH.pub",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="merge a matrix's cell artifacts into the consolidated report",
    )
    report_parser.add_argument(
        "--matrix",
        required=True,
        metavar="SPEC",
        help="scenario-matrix spec file to report on",
    )
    report_parser.add_argument(
        "--results",
        default=str(DEFAULT_RESULTS_DIR),
        help="directory holding the cell artifacts (default: results/)",
    )
    report_parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="consolidated JSON output (default: <results>/scenario_report.json)",
    )
    report_parser.add_argument(
        "--md",
        default="docs/scenario-report.md",
        metavar="PATH",
        help="markdown output (default: docs/scenario-report.md; "
        "'-' skips markdown)",
    )
    report_parser.add_argument(
        "--baseline",
        default="docs/scenario-baseline.json",
        metavar="PATH",
        help="baseline report snapshot for regression deltas "
        "(default: docs/scenario-baseline.json; missing file = no deltas)",
    )
    report_parser.add_argument(
        "--trajectory",
        default="BENCH_trajectory.json",
        metavar="PATH",
        help="bench trajectory file for the trend table "
        "(default: BENCH_trajectory.json; missing file = no trend section)",
    )

    subparsers.add_parser("list", help="list registered experiments")

    args = parser.parse_args(argv)
    matrices, code = _register_matrices(getattr(args, "matrix", None))
    if code:
        return code
    if args.command == "list":
        for name in experiment_names():
            print(f"{name:24s} {get_experiment(name).title}")
        return 0
    if args.command == "coordinate":
        return _coordinate_command(args)
    if args.command == "worker":
        return _worker_command(args)
    if args.command == "keygen":
        return _keygen_command(args)
    if args.command == "report":
        return _report_command(args, matrices[0])
    return _run_command(args, matrices)


def _register_matrices(paths: list[str] | str | None):
    """Register the spec file(s) named by ``--matrix``; spec errors exit 2."""
    from .scenarios import ScenarioSpecError, register_matrix_file

    if paths is None:
        return [], 0
    matrices = []
    for path in [paths] if isinstance(paths, str) else paths:
        try:
            matrices.append(register_matrix_file(path))
        except ScenarioSpecError as error:
            return [], _fail(str(error))
    return matrices, 0


def _fail(message: str) -> int:
    """One-line usage error on stderr, exit 2 (no traceback, no usage dump)."""
    import sys

    print(f"error: {message}", file=sys.stderr)
    return 2


def _validate_endpoint(host: str, port: int, *, listen: bool) -> int:
    """Host/port sanity for the distributed subcommands: exit-2 one-liners.

    A typo'd hostname or an out-of-range/privileged port must fail before
    any socket is opened — with the same one-line treatment as an unknown
    experiment name — instead of surfacing as a raw ``socket.gaierror`` or
    ``PermissionError`` traceback mid-run.
    """
    import socket

    if not 0 <= port <= 65535:
        return _fail(f"port {port} outside the valid range 0..65535")
    if port == 0 and not listen:
        return _fail("a worker needs the coordinator's actual port, not 0")
    if 1 <= port <= 1023:
        return _fail(
            f"port {port} is in the privileged range 1..1023; pick one >= 1024"
        )
    try:
        socket.getaddrinfo(host, None)
    except socket.gaierror as error:
        return _fail(f"cannot resolve host {host!r} ({error})")
    return 0


def _load_credential(
    keyfile: str | None,
    *,
    authorized_keys: str | None = None,
    coordinator_key: str | None = None,
    role: str,
):
    """Build a TransportCredential from CLI key-file flags, or exit 2.

    Returns ``(credential, 0)`` on success, ``(None, 2)`` after printing the
    one-line error.  ``role`` is "coordinate" or "worker" and decides which
    companion flag is required alongside ``--keyfile``.
    """
    from ..core.errors import KeyFileError
    from ..net import (
        TransportCredential,
        load_allowlist,
        load_keypair,
        load_public_key,
    )

    if keyfile is None:
        return None, _fail(
            f"--transport secure needs --keyfile "
            f"(generate one with: python -m repro.experiments keygen <path>)"
        )
    if role == "coordinate" and authorized_keys is None:
        return None, _fail(
            "--transport secure needs --authorized-keys "
            "(one worker public key per line)"
        )
    if role == "worker" and coordinator_key is None:
        return None, _fail(
            "--transport secure needs --coordinator-key "
            "(the coordinator's .pub file)"
        )
    try:
        keypair = load_keypair(keyfile)
        authorized = (
            frozenset()
            if authorized_keys is None
            else load_allowlist(authorized_keys)
        )
        remote_public = (
            None if coordinator_key is None else load_public_key(coordinator_key)
        )
    except KeyFileError as error:
        return None, _fail(str(error))
    return (
        TransportCredential(
            keypair=keypair, authorized=authorized, remote_public=remote_public
        ),
        0,
    )


def _validate_names(names: list[str], backend: str) -> int:
    """Shared up-front validation so usage mistakes exit with one line,
    while genuine failures inside trial code keep their tracebacks."""
    unknown = [name for name in names if name not in experiment_names()]
    if unknown:
        known = ", ".join(experiment_names())
        return _fail(f"unknown experiment(s): {', '.join(unknown)} (known: {known})")
    unsupported = [
        name for name in names if backend not in get_experiment(name).backends
    ]
    if unsupported:
        return _fail(
            f"experiment(s) {', '.join(unsupported)} do not support "
            f"backend {backend!r} (simulator-only)"
        )
    return 0


def _validate_scheme(names: list[str], scheme: str | None, backend: str) -> int:
    """Per-experiment --scheme validation: one-line exit-2 usage errors."""
    if scheme is None:
        return 0
    from .runner import validate_scheme

    for name in names:
        try:
            validate_scheme(get_experiment(name), scheme, backend)
        except ValueError as error:
            return _fail(str(error))
    return 0


def _validate_kernel(names: list[str], kernel: str | None) -> int:
    """Per-experiment --kernel validation: one-line exit-2 usage errors.

    An unavailable compiled backend is a usage error too (install the
    ``fast`` extra or provide a C toolchain), so it gets the same one-line
    treatment instead of a traceback.
    """
    if kernel is None:
        return 0
    from ..core.errors import KernelUnavailableError
    from .runner import validate_kernel

    for name in names:
        try:
            validate_kernel(get_experiment(name), kernel)
        except (ValueError, KernelUnavailableError) as error:
            return _fail(str(error))
    return 0


def _print_result(name: str, result) -> None:
    """Shared table printing for RunResult and DistributedRunResult."""
    status = "cached" if result.cached else f"{result.elapsed_seconds:.2f}s"
    header = f"scale={result.scale}, seed={result.seed}"
    if result.backend != "sim":
        header += f", backend={result.backend}"
    if getattr(result, "scheme", None):
        header += f", scheme={result.scheme}"
    if getattr(result, "kernel", None):
        header += f", kernel={result.kernel}"
    workers_seen = getattr(result, "workers_seen", 0)
    if workers_seen:
        header += f", dist-workers={workers_seen}"
    print(f"\n=== {name} ({header}, {status}) ===")
    # The structural parity sub-dicts are artifact material, not table
    # material — they would dwarf every other column.
    print(
        format_table(
            [
                {key: value for key, value in row.items() if key != "parity"}
                for row in result.rows
            ]
        )
    )
    if result.artifact is not None:
        print(f"artifact: {result.artifact}")


def _run_command(args: argparse.Namespace, matrices: list) -> int:
    if not args.names:
        if not matrices:
            return _fail("no experiment names given (and no --matrix to default to)")
        from .scenarios import expand_matrix

        args.names = [
            cell.name for matrix in matrices for cell in expand_matrix(matrix)
        ]
    if args.workers < 1:
        return _fail(f"--workers must be >= 1, got {args.workers}")
    if args.dist is not None and args.dist < 1:
        return _fail(f"--dist must be >= 1 worker process, got {args.dist}")
    if args.dist is not None and args.workers != 1:
        return _fail(
            "--workers selects the in-process pool and --dist the distributed "
            "coordinator; pass one or the other"
        )
    if args.transport != "plain" and args.dist is None:
        return _fail(
            "--transport applies to the distributed wire; pair it with --dist "
            "(or use the coordinate/worker subcommands)"
        )
    code = _validate_names(args.names, args.backend)
    if code:
        return code
    code = _validate_scheme(args.names, args.scheme, args.backend)
    if code:
        return code
    code = _validate_kernel(args.names, args.kernel)
    if code:
        return code
    if args.dist is not None:
        unshardable = [
            name for name in args.names if not get_experiment(name).shardable
        ]
        if unshardable:
            return _fail(
                f"experiment(s) {', '.join(unshardable)} are not shardable "
                "(single-host wall-clock measurements); drop --dist"
            )
    for name in args.names:
        if args.dist is not None:
            from .distributed import run_distributed

            result = run_distributed(
                name,
                scale=args.scale,
                seed=args.seed,
                out_dir=args.out,
                force=args.force,
                backend=args.backend,
                scheme=args.scheme,
                kernel=args.kernel,
                workers=args.dist,
                transport=args.transport,
            )
        else:
            result = run_experiment(
                name,
                scale=args.scale,
                workers=args.workers,
                seed=args.seed,
                out_dir=args.out,
                force=args.force,
                backend=args.backend,
                scheme=args.scheme,
                kernel=args.kernel,
            )
        _print_result(name, result)
    return 0


def _coordinate_command(args: argparse.Namespace) -> int:
    from .distributed import run_distributed

    code = _validate_names([args.name], args.backend)
    if code:
        return code
    code = _validate_scheme([args.name], args.scheme, args.backend)
    if code:
        return code
    code = _validate_kernel([args.name], args.kernel)
    if code:
        return code
    if not get_experiment(args.name).shardable:
        return _fail(
            f"experiment {args.name!r} is not shardable "
            "(single-host wall-clock measurement)"
        )
    if args.chunk < 1:
        return _fail(f"--chunk must be >= 1, got {args.chunk}")
    if args.lease_seconds <= 0:
        return _fail(f"--lease-seconds must be positive, got {args.lease_seconds}")
    if args.min_workers < 1:
        return _fail(f"--min-workers must be >= 1, got {args.min_workers}")
    code = _validate_endpoint(args.host, args.port, listen=True)
    if code:
        return code
    credential = None
    if args.transport == "secure":
        credential, code = _load_credential(
            args.keyfile, authorized_keys=args.authorized_keys, role="coordinate"
        )
        if code:
            return code
    elif args.keyfile or args.authorized_keys:
        return _fail("--keyfile/--authorized-keys require --transport secure")
    result = run_distributed(
        args.name,
        scale=args.scale,
        seed=args.seed,
        out_dir=args.out,
        force=args.force,
        backend=args.backend,
        scheme=args.scheme,
        kernel=args.kernel,
        host=args.host,
        port=args.port,
        workers=0,
        min_workers=args.min_workers,
        chunk_size=args.chunk,
        lease_seconds=args.lease_seconds,
        timeout=args.timeout,
        transport=args.transport,
        credential=credential,
        log=print,
    )
    print(
        f"distributed run complete: experiment={result.name} "
        f"trials={result.trial_count} workers={result.workers_seen} "
        f"redispatched={result.redispatched} cached={str(result.cached).lower()}"
    )
    _print_result(args.name, result)
    return 0


def _worker_command(args: argparse.Namespace) -> int:
    import sys

    from .distributed import run_worker

    code = _validate_endpoint(args.host, args.port, listen=False)
    if code:
        return code
    credential = None
    if args.transport == "secure":
        credential, code = _load_credential(
            args.keyfile, coordinator_key=args.coordinator_key, role="worker"
        )
        if code:
            return code
    elif args.keyfile or args.coordinator_key:
        return _fail("--keyfile/--coordinator-key require --transport secure")
    return run_worker(
        host=args.host,
        port=args.port,
        label=args.label,
        crash_after_leases=args.crash_after_leases,
        connect_timeout=args.connect_timeout,
        transport=args.transport,
        credential=credential,
        log=lambda message: print(message, file=sys.stderr),
    )


def _keygen_command(args: argparse.Namespace) -> int:
    from ..core.errors import KeyFileError
    from ..net import write_keypair

    try:
        pair = write_keypair(args.path)
    except KeyFileError as error:
        return _fail(str(error))
    print(f"secret key: {args.path} (mode 0600 — keep it on this host)")
    print(f"public key: {args.path}.pub")
    print(f"public hex: {pair.public.hex()}")
    return 0


def _report_command(args: argparse.Namespace, matrix) -> int:
    from pathlib import Path

    from .report import write_report

    results_dir = Path(args.results)
    json_path = (
        Path(args.json) if args.json else results_dir / "scenario_report.json"
    )
    md_path = None if args.md == "-" else Path(args.md)
    report = write_report(
        matrix,
        results_dir,
        json_path=json_path,
        md_path=md_path,
        baseline_path=args.baseline,
        trajectory_path=args.trajectory,
    )
    summary = report["summary"]
    print(
        f"report for matrix {matrix.name!r}: {summary['cells']} cell(s), "
        f"{summary['complete']} complete, {summary['partial']} partial, "
        f"{summary['missing']} missing"
    )
    print(f"json: {json_path}")
    if md_path is not None:
        print(f"markdown: {md_path}")
    return 0


def _legacy_main(argv: list[str]) -> int:
    from .figures import FIGURES

    parser = argparse.ArgumentParser(
        description="Regenerate paper figures (legacy interface)."
    )
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[*FIGURES, []],
        help="figures to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="trial-count scale factor (1.0 = the paper's full counts)",
    )
    args = parser.parse_args(argv)
    selected = args.figures or list(FIGURES)
    for name in selected:
        rows = FIGURES[name](scale=args.scale)
        print(f"\n=== {name} ===")
        print(format_table(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
