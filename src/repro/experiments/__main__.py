"""Command-line experiment runner.

Subcommands::

    python -m repro.experiments run <name> [...] [--workers N] [--scale S]
                                    [--out DIR] [--seed N] [--force]
                                    [--backend sim|aio]
    python -m repro.experiments list

``run`` executes registered experiments through the parallel runner and
writes canonical JSON artifacts (default: ``results/``); artifacts matching
the requested (experiment, scale, seed) are re-used unless ``--force``.
``--backend aio`` drives the overlay experiments (figs. 11-15) over the
asyncio localhost-TCP backend instead of the discrete-event simulator; the
structural fields land in ``<name>.parity.json`` for cross-backend
comparison.  ``list`` prints every registered experiment.

The legacy invocation ``python -m repro.experiments [fig07 ...] [--scale S]``
still works: it runs the named figures inline and prints their tables.
"""

from __future__ import annotations

import argparse

from ..overlay.runtime import SUBSTRATE_BACKENDS
from .registry import experiment_names, get_experiment
from .runner import DEFAULT_RESULTS_DIR, run_experiment
from .tables import format_table

_SUBCOMMANDS = ("run", "list")


def _positive_float(raw: str) -> float:
    value = float(raw)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {raw}")
    return value


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {raw}")
    return value


def main(argv: list[str] | None = None) -> int:
    import sys

    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _dispatch(argv)
    return _legacy_main(argv)


def _dispatch(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run experiments through the parallel runner"
    )
    run_parser.add_argument(
        "names",
        nargs="+",
        metavar="name",
        help="registered experiment names (see the 'list' subcommand)",
    )
    run_parser.add_argument(
        "--workers", type=_positive_int, default=1, help="worker processes (default: 1)"
    )
    run_parser.add_argument(
        "--scale",
        type=_positive_float,
        default=1.0,
        help="trial-count scale factor (1.0 = the paper's full counts)",
    )
    run_parser.add_argument(
        "--out",
        default=str(DEFAULT_RESULTS_DIR),
        help="artifact directory (default: results/)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment's base seed"
    )
    run_parser.add_argument(
        "--backend",
        choices=SUBSTRATE_BACKENDS,
        default="sim",
        help="overlay transport backend for figs. 11-15: 'sim' (discrete-event, "
        "default) or 'aio' (asyncio localhost TCP)",
    )
    run_parser.add_argument(
        "--force",
        action="store_true",
        help="recompute even if a matching artifact exists",
    )

    subparsers.add_parser("list", help="list registered experiments")

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in experiment_names():
            print(f"{name:24s} {get_experiment(name).title}")
        return 0
    return _run_command(args)


def _run_command(args: argparse.Namespace) -> int:
    import sys

    unknown = [name for name in args.names if name not in experiment_names()]
    if unknown:
        known = ", ".join(experiment_names())
        print(
            f"error: unknown experiment(s): {', '.join(unknown)} (known: {known})",
            file=sys.stderr,
        )
        return 2
    # Validate backend support up front so usage mistakes exit with one
    # line, while genuine failures inside trial code keep their tracebacks.
    unsupported = [
        name
        for name in args.names
        if args.backend not in get_experiment(name).backends
    ]
    if unsupported:
        print(
            f"error: experiment(s) {', '.join(unsupported)} do not support "
            f"backend {args.backend!r} (simulator-only)",
            file=sys.stderr,
        )
        return 2
    for name in args.names:
        result = run_experiment(
            name,
            scale=args.scale,
            workers=args.workers,
            seed=args.seed,
            out_dir=args.out,
            force=args.force,
            backend=args.backend,
        )
        status = "cached" if result.cached else f"{result.elapsed_seconds:.2f}s"
        header = f"scale={result.scale}, seed={result.seed}"
        if result.backend != "sim":
            header += f", backend={result.backend}"
        print(f"\n=== {name} ({header}, {status}) ===")
        # The structural parity sub-dicts are artifact material, not table
        # material — they would dwarf every other column.
        print(
            format_table(
                [
                    {key: value for key, value in row.items() if key != "parity"}
                    for row in result.rows
                ]
            )
        )
        if result.artifact is not None:
            print(f"artifact: {result.artifact}")
    return 0


def _legacy_main(argv: list[str]) -> int:
    from .figures import FIGURES

    parser = argparse.ArgumentParser(
        description="Regenerate paper figures (legacy interface)."
    )
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[*FIGURES, []],
        help="figures to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="trial-count scale factor (1.0 = the paper's full counts)",
    )
    args = parser.parse_args(argv)
    selected = args.figures or list(FIGURES)
    for name in selected:
        rows = FIGURES[name](scale=args.scale)
        print(f"\n=== {name} ===")
        print(format_table(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
