"""Data-plane microbenchmark: batched overlay plane vs. per-packet reference.

One fig11-style workload (a LAN flow shipping a burst of fixed-size messages
end to end through real relay engines) is driven twice over identical
substrates and seeds: once on the per-packet ``"scalar"`` data plane and once
on the ``"batched"`` plane.  The comparison asserts the batched plane's
contract — *bit-identical* delivered plaintexts and relay counters — and
measures its wall-clock speedup, which the ``dataplane-bench`` experiment
(and the benchmark gate in ``benchmarks/``) requires to be >= 5x at 64
messages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.source import Source
from ..overlay.node import SimulatedOverlayNetwork, SlicingRuntime
from ..overlay.profiles import LAN_PROFILE, OverlayProfile
from .throughput import connection_bps_for

#: Message count of the acceptance workload.
DATAPLANE_MESSAGES = 64

#: Default workload shape (chosen so coding work is non-trivial per message
#: while the burst still runs in well under a second on the batched plane).
DATAPLANE_D = 4
DATAPLANE_PATH_LENGTH = 5
DATAPLANE_MESSAGE_BYTES = 256

#: Pipelining quantum used by the benchmark's batched plane: the whole burst
#: per connection is one transmit batch (wall-clock is what is measured here,
#: not simulated pipelining behaviour).
DATAPLANE_BATCH_CHUNK = 64


@dataclass
class DataplaneRun:
    """Outcome of one workload execution on one data plane."""

    data_plane: str
    elapsed_seconds: float
    delivered: dict[int, bytes]
    relay_stats: dict[str, tuple]
    events_processed: int


def run_dataplane_workload(
    data_plane: str,
    num_messages: int = DATAPLANE_MESSAGES,
    d: int = DATAPLANE_D,
    d_prime: int | None = None,
    path_length: int = DATAPLANE_PATH_LENGTH,
    message_bytes: int = DATAPLANE_MESSAGE_BYTES,
    seed: int = 42,
    batch_chunk: int = DATAPLANE_BATCH_CHUNK,
    profile: OverlayProfile = LAN_PROFILE,
) -> DataplaneRun:
    """Run the fig11-style burst once on ``data_plane``; time only the burst.

    Setup (flow establishment) is identical on both planes and excluded from
    the measurement; the clock covers coding, shipping and decoding the
    ``num_messages`` burst until the simulator drains (including flush
    timers).
    """
    d_prime = d if d_prime is None else d_prime
    rng = np.random.default_rng(seed)
    source_stage = [f"src-{i}" for i in range(d_prime)]
    relays = [f"relay-{i}" for i in range(max(path_length * d_prime * 2, 32))]
    destination = "destination"
    network = profile.build_network(source_stage + relays + [destination], rng)
    substrate = SimulatedOverlayNetwork(
        network, connection_bps=connection_bps_for(profile)
    )
    runtime = SlicingRuntime(
        substrate,
        rng=np.random.default_rng(seed + 1),
        data_plane=data_plane,
        batch_chunk=batch_chunk,
    )
    source = Source(
        source_stage[0],
        source_stage[1:],
        d=d,
        d_prime=d_prime,
        path_length=path_length,
        rng=rng,
    )
    flow = source.establish_flow(relays, destination)
    progress = runtime.start_flow(source, flow)
    substrate.sim.run()
    payload = bytes(message_bytes)
    started = time.perf_counter()
    runtime.send_messages(source, flow, [payload] * num_messages)
    substrate.sim.run()
    elapsed = time.perf_counter() - started
    destination_relay = runtime.relays[destination]
    delivered = destination_relay.delivered_messages(flow.plan.flow_ids[destination])
    stats = {
        address: (
            relay.stats.packets_received,
            relay.stats.packets_sent,
            relay.stats.bytes_received,
            relay.stats.bytes_sent,
            relay.stats.flows_decoded,
            relay.stats.messages_delivered,
            relay.stats.regenerated_slices,
        )
        for address, relay in runtime.relays.items()
    }
    assert len(progress.delivered_messages) == len(delivered)
    return DataplaneRun(
        data_plane=data_plane,
        elapsed_seconds=elapsed,
        delivered=delivered,
        relay_stats=stats,
        events_processed=substrate.sim.events_processed,
    )


def compare_data_planes(
    reps: int = 3,
    seed: int = 42,
    num_messages: int = DATAPLANE_MESSAGES,
    **workload,
) -> dict:
    """Run both planes ``reps`` times; returns the benchmark row.

    Timing uses the per-side minimum over ``reps`` (the standard noise-robust
    microbenchmark estimator, as in the coding and anonymity benches);
    bit-identity of delivered plaintexts and relay counters is checked on
    every repetition pair.
    """
    scalar_times: list[float] = []
    batched_times: list[float] = []
    identical = True
    events = {"scalar": 0, "batched": 0}
    # Warm both paths so neither measurement pays first-call allocation costs.
    run_dataplane_workload("scalar", num_messages=num_messages, seed=seed, **workload)
    run_dataplane_workload("batched", num_messages=num_messages, seed=seed, **workload)
    for _ in range(reps):
        scalar = run_dataplane_workload(
            "scalar", num_messages=num_messages, seed=seed, **workload
        )
        batched = run_dataplane_workload(
            "batched", num_messages=num_messages, seed=seed, **workload
        )
        scalar_times.append(scalar.elapsed_seconds)
        batched_times.append(batched.elapsed_seconds)
        identical = identical and (
            scalar.delivered == batched.delivered
            and scalar.relay_stats == batched.relay_stats
            and len(scalar.delivered) == num_messages
        )
        events = {
            "scalar": scalar.events_processed,
            "batched": batched.events_processed,
        }
    scalar_seconds = min(scalar_times)
    batched_seconds = min(batched_times)
    return {
        "num_messages": num_messages,
        "scalar_ms": scalar_seconds * 1e3,
        "batched_ms": batched_seconds * 1e3,
        "speedup": scalar_seconds / max(batched_seconds, 1e-12),
        "identical": identical,
        "scalar_events": events["scalar"],
        "batched_events": events["batched"],
    }
