"""Churn-resilience analysis (Eqs. 6-7) and transfer-success simulation."""

from .analysis import (
    ResiliencePoint,
    onion_erasure_success_probability,
    path_survival_probability,
    slicing_success_probability,
    stage_success_probability,
    standard_onion_success_probability,
    sweep_redundancy,
)
from .transfer import (
    TransferResult,
    onion_erasure_transfer_succeeds,
    packet_level_success,
    simulate_transfers,
    slicing_transfer_succeeds,
    standard_onion_transfer_succeeds,
)
from .transfer import sweep_redundancy as sweep_transfer_redundancy

__all__ = [
    "ResiliencePoint",
    "onion_erasure_success_probability",
    "slicing_success_probability",
    "stage_success_probability",
    "standard_onion_success_probability",
    "path_survival_probability",
    "sweep_redundancy",
    "TransferResult",
    "simulate_transfers",
    "sweep_transfer_redundancy",
    "slicing_transfer_succeeds",
    "onion_erasure_transfer_succeeds",
    "standard_onion_transfer_succeeds",
    "packet_level_success",
]
