"""Analytical churn-resilience model (§8.1, Eqs. 6 and 7, Fig. 16).

Both schemes add the same redundancy ``R = (d' - d)/d`` by sending ``d'``
coded slices of which any ``d`` suffice:

* *Onion routing with erasure codes* builds ``d'`` independent onion paths.
  A path survives only if **all** ``L`` of its relays stay up, and the
  transfer succeeds if at least ``d`` paths survive (Eq. 6).
* *Information slicing* lets relays regenerate redundancy (§4.4.1), so a
  transfer survives as long as **every stage** keeps at least ``d`` live
  relays — failures in different stages do not compound (Eq. 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def path_survival_probability(node_failure_prob: float, path_length: int) -> float:
    """Probability that a single onion path of ``L`` relays stays up."""
    _validate_probability(node_failure_prob)
    return (1.0 - node_failure_prob) ** path_length


def onion_erasure_success_probability(
    node_failure_prob: float, path_length: int, d: int, d_prime: int
) -> float:
    """Eq. 6: at least ``d`` of ``d'`` independent onion paths survive."""
    _validate_parameters(d, d_prime)
    p_path = path_survival_probability(node_failure_prob, path_length)
    return sum(
        math.comb(d_prime, i) * (p_path**i) * ((1.0 - p_path) ** (d_prime - i))
        for i in range(d, d_prime + 1)
    )


def stage_success_probability(node_failure_prob: float, d: int, d_prime: int) -> float:
    """Probability a single stage keeps at least ``d`` of its ``d'`` relays."""
    _validate_parameters(d, d_prime)
    _validate_probability(node_failure_prob)
    p = node_failure_prob
    return sum(
        math.comb(d_prime, i) * ((1.0 - p) ** i) * (p ** (d_prime - i))
        for i in range(d, d_prime + 1)
    )


def slicing_success_probability(
    node_failure_prob: float, path_length: int, d: int, d_prime: int
) -> float:
    """Eq. 7: every one of the ``L`` stages keeps at least ``d`` live relays."""
    return stage_success_probability(node_failure_prob, d, d_prime) ** path_length


def standard_onion_success_probability(
    node_failure_prob: float, path_length: int
) -> float:
    """Plain onion routing (one path, no redundancy) for the Fig. 17 comparison."""
    return path_survival_probability(node_failure_prob, path_length)


@dataclass(frozen=True)
class ResiliencePoint:
    """One point of the Fig. 16 curves."""

    redundancy: float
    d_prime: int
    onion_erasure: float
    information_slicing: float


def sweep_redundancy(
    node_failure_prob: float,
    path_length: int,
    d: int,
    d_primes: list[int],
) -> list[ResiliencePoint]:
    """Fig. 16: success probability vs. added redundancy for both schemes."""
    points = []
    for d_prime in d_primes:
        points.append(
            ResiliencePoint(
                redundancy=(d_prime - d) / d,
                d_prime=d_prime,
                onion_erasure=onion_erasure_success_probability(
                    node_failure_prob, path_length, d, d_prime
                ),
                information_slicing=slicing_success_probability(
                    node_failure_prob, path_length, d, d_prime
                ),
            )
        )
    return points


def _validate_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")


def _validate_parameters(d: int, d_prime: int) -> None:
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if d_prime < d:
        raise ValueError(f"d' ({d_prime}) must be >= d ({d})")
