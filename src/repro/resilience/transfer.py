"""Churn-prone transfer simulation (§8.2, Fig. 17).

The question the paper asks: *given PlanetLab-like churn, what is the
probability of completing a 30-minute anonymous session?*  We answer it with
a Monte-Carlo over node lifetimes drawn from a churn model:

* **standard onion routing** — one path of ``L`` relays; the session
  completes only if every relay outlives it;
* **onion routing + erasure codes** — ``d'`` node-disjoint onion paths, any
  ``d`` of which must survive intact;
* **information slicing** — ``L`` stages of ``d'`` relays with in-network
  regeneration (§4.4.1): the session survives as long as every stage retains
  at least ``d`` live relays, because surviving relays keep re-creating the
  lost redundancy for downstream stages.

The same trials can optionally be cross-checked against the packet-level
protocol via :func:`packet_level_success` (used in the integration tests),
which replays the failure pattern on a real in-memory overlay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.source import Source
from ..overlay.churn import ChurnModel
from ..overlay.local import LocalOverlay


@dataclass(frozen=True)
class TransferResult:
    """Success probabilities measured for one redundancy configuration."""

    redundancy: float
    d: int
    d_prime: int
    information_slicing: float
    onion_erasure: float
    standard_onion: float
    trials: int


def slicing_transfer_succeeds(stage_failures: np.ndarray, d: int) -> bool:
    """Information slicing succeeds iff every stage keeps >= d live relays.

    ``stage_failures`` has shape (L, d'); True marks a relay that fails
    before the session completes.
    """
    alive_per_stage = (~stage_failures).sum(axis=1)
    return bool(np.all(alive_per_stage >= d))


def onion_erasure_transfer_succeeds(path_failures: np.ndarray, d: int) -> bool:
    """Onion + erasure codes succeeds iff >= d of the d' paths stay fully alive.

    ``path_failures`` has shape (d', L).
    """
    alive_paths = (~path_failures.any(axis=1)).sum()
    return bool(alive_paths >= d)


def standard_onion_transfer_succeeds(path_failures: np.ndarray) -> bool:
    """Plain onion routing succeeds iff its single path stays fully alive."""
    return not bool(path_failures.any())


def simulate_transfers(
    churn: ChurnModel,
    session_seconds: float,
    path_length: int,
    d: int,
    d_prime: int,
    trials: int = 1000,
    rng: np.random.Generator | None = None,
) -> TransferResult:
    """Monte-Carlo the three schemes under identical churn and redundancy."""
    rng = np.random.default_rng() if rng is None else rng
    slicing_successes = 0
    erasure_successes = 0
    onion_successes = 0
    for _ in range(trials):
        slicing_failures = churn.sample_failures(
            path_length * d_prime, session_seconds, rng
        ).reshape(path_length, d_prime)
        slicing_successes += int(slicing_transfer_succeeds(slicing_failures, d))

        erasure_failures = churn.sample_failures(
            d_prime * path_length, session_seconds, rng
        ).reshape(d_prime, path_length)
        erasure_successes += int(onion_erasure_transfer_succeeds(erasure_failures, d))

        onion_failures = churn.sample_failures(path_length, session_seconds, rng)
        onion_successes += int(standard_onion_transfer_succeeds(onion_failures))
    return TransferResult(
        redundancy=(d_prime - d) / d,
        d=d,
        d_prime=d_prime,
        information_slicing=slicing_successes / trials,
        onion_erasure=erasure_successes / trials,
        standard_onion=onion_successes / trials,
        trials=trials,
    )


def sweep_redundancy(
    churn: ChurnModel,
    session_seconds: float,
    path_length: int,
    d: int,
    d_primes: list[int],
    trials: int = 1000,
    seed: int = 23,
) -> list[TransferResult]:
    """Fig. 17: transfer success probability across redundancy levels."""
    results = []
    for index, d_prime in enumerate(d_primes):
        rng = np.random.default_rng(seed + index)
        results.append(
            simulate_transfers(
                churn, session_seconds, path_length, d, d_prime, trials, rng
            )
        )
    return results


def packet_level_success(
    path_length: int,
    d: int,
    d_prime: int,
    failed_stage_positions: list[tuple[int, int]],
    message: bytes = b"payload",
    seed: int = 5,
) -> bool:
    """Replay a failure pattern on the real protocol over an in-memory overlay.

    ``failed_stage_positions`` lists (stage, position) pairs — 1-based stages
    — whose relay dies after route setup but before the data phase.  Returns
    True iff the destination still decodes the message.  Used to validate
    that the lightweight Monte-Carlo model and the packet-level protocol
    agree on what survives.
    """
    overlay = LocalOverlay()
    relays = [f"relay-{i}" for i in range(path_length * d_prime * 3)]
    destination = "destination"
    overlay.add_nodes(relays + [destination], seed=seed)
    # Place the destination in the last stage (as the paper does for its
    # measurements) so the lightweight "every stage needs >= d live relays"
    # model and the packet-level outcome agree on what counts as success.
    flow = None
    for attempt in range(200):
        source = Source(
            "source",
            [f"pseudo-{i}" for i in range(d_prime - 1)],
            d=d,
            d_prime=d_prime,
            path_length=path_length,
            rng=np.random.default_rng(seed + attempt),
        )
        candidate = source.establish_flow(relays, destination)
        if candidate.graph.destination_stage == path_length:
            flow = candidate
            break
    assert flow is not None, "could not place the destination in the last stage"
    overlay.inject(flow.setup_packets)
    graph = flow.graph
    for stage, position in failed_stage_positions:
        victim = graph.stages[stage][position]
        if victim == destination:
            continue
        overlay.fail_node(victim)
    overlay.inject(source.make_data_packets(flow, message))
    overlay.flush_flow(flow)
    delivered = overlay.node(destination).delivered_messages(
        flow.plan.flow_ids[destination]
    )
    return any(value == message for value in delivered.values())
