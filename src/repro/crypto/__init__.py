"""Cryptographic substrates: keystream cipher, key material, PK cost model."""

from .keys import KeyMaterial, generate_flow_id, generate_key
from .symmetric import StreamCipher, decrypt, encrypt
from .public_key import PublicKeyCostModel, SimulatedKeyPair

__all__ = [
    "KeyMaterial",
    "StreamCipher",
    "PublicKeyCostModel",
    "SimulatedKeyPair",
    "encrypt",
    "decrypt",
    "generate_key",
    "generate_flow_id",
]
