"""Simulated public-key cryptography (cost model).

The onion-routing baseline (§2, §7) wraps its route-setup message in layers
of public-key encryption.  The evaluation only depends on the *cost* of those
operations relative to information slicing's finite-field coding, so instead
of shipping an RSA implementation we model public-key encryption as:

* a byte-transformation that is reversible only with the matching
  "private key" (implemented with the keystream cipher keyed by the key pair
  secret, so layered onions really do hide the payload from our simulated
  adversaries), plus
* a configurable CPU cost in seconds charged to the node performing the
  operation, which the discrete-event simulator adds to its clock.

Default costs follow common software-RSA-2048 figures on mid-2000s hardware
(about 1.5 ms per public-key operation and 6 ms per private-key operation),
which is the era of the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .keys import generate_key
from .symmetric import StreamCipher

#: Overhead bytes a simulated public-key envelope adds to its payload.
ENVELOPE_OVERHEAD = 16


@dataclass(frozen=True)
class PublicKeyCostModel:
    """CPU cost (seconds) charged per simulated public-key operation."""

    encrypt_seconds: float = 0.0015
    decrypt_seconds: float = 0.006
    symmetric_seconds_per_byte: float = 4e-9


@dataclass
class SimulatedKeyPair:
    """A stand-in for an RSA key pair.

    ``public`` is what senders embed in onions; ``secret`` is held by the
    owner and is required to open envelopes.  Encryption binds the payload to
    the secret via the keystream cipher, so no party lacking the secret can
    read it — which is all the anonymity analysis needs.
    """

    owner: str
    public: bytes
    secret: bytes

    @classmethod
    def generate(cls, owner: str, rng: np.random.Generator) -> "SimulatedKeyPair":
        secret = generate_key(rng, size=32)
        # The "public key" is a fingerprint; possession of it does not allow
        # decryption because encryption/decryption key off the secret.
        public = generate_key(rng, size=16)
        return cls(owner=owner, public=public, secret=secret)

    def encrypt(self, plaintext: bytes) -> bytes:
        """Seal ``plaintext`` so only the holder of ``secret`` can open it."""
        cipher = StreamCipher(self.secret)
        nonce = self.public[:8]
        return b"PKV1" + self.public[:12] + cipher.encrypt(plaintext, nonce)

    def decrypt(self, blob: bytes) -> bytes:
        """Open an envelope created by :meth:`encrypt` with this key pair."""
        if blob[:4] != b"PKV1" or blob[4:16] != self.public[:12]:
            raise ValueError("envelope was not encrypted to this key pair")
        cipher = StreamCipher(self.secret)
        nonce = self.public[:8]
        return cipher.decrypt(blob[16:], nonce)
