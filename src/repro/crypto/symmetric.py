"""Symmetric keystream cipher.

The paper encrypts data messages with a per-destination symmetric key that
the source delivered during route setup (§4.2.1).  Rather than depending on
an external crypto package, we implement a simple counter-mode keystream
cipher over SHA-256: the keystream block ``i`` is ``SHA256(key || nonce || i)``
and ciphertext is plaintext XOR keystream.  This provides the properties the
protocol evaluation needs — the ciphertext is unintelligible without the key
and the operation cost is realistic for a software cipher — without claiming
to be production cryptography.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from ..core.errors import ProtocolError

_BLOCK_SIZE = 32  # SHA-256 digest size
NONCE_SIZE = 8


class StreamCipher:
    """Counter-mode keystream cipher keyed by an arbitrary byte string."""

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ProtocolError("symmetric key must be non-empty")
        self._key = bytes(key)

    def keystream(self, nonce: bytes, length: int) -> bytes:
        """Generate ``length`` keystream bytes for the given nonce."""
        blocks = []
        for counter in range((length + _BLOCK_SIZE - 1) // _BLOCK_SIZE):
            digest = hashlib.sha256(
                self._key + nonce + struct.pack(">Q", counter)
            ).digest()
            blocks.append(digest)
        return b"".join(blocks)[:length]

    def encrypt(self, plaintext: bytes, nonce: bytes) -> bytes:
        """XOR ``plaintext`` with the keystream for ``nonce``."""
        if len(nonce) != NONCE_SIZE:
            raise ProtocolError(f"nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
        stream = self.keystream(nonce, len(plaintext))
        # Vectorised XOR: identical bytes to the per-byte loop, but constant
        # Python overhead — this sits on the data path of every message.
        out = np.bitwise_xor(
            np.frombuffer(plaintext, dtype=np.uint8),
            np.frombuffer(stream, dtype=np.uint8),
        )
        return out.tobytes()

    # XOR is an involution, so decryption is identical to encryption.
    decrypt = encrypt

    def seal(self, plaintext: bytes, nonce: bytes) -> bytes:
        """Encrypt and prepend the nonce, producing a self-contained blob."""
        return nonce + self.encrypt(plaintext, nonce)

    def open(self, blob: bytes) -> bytes:
        """Inverse of :meth:`seal`."""
        if len(blob) < NONCE_SIZE:
            raise ProtocolError("sealed blob shorter than its nonce")
        return self.decrypt(blob[NONCE_SIZE:], blob[:NONCE_SIZE])


def encrypt(key: bytes, plaintext: bytes, nonce: bytes) -> bytes:
    """Module-level convenience wrapper around :class:`StreamCipher`."""
    return StreamCipher(key).encrypt(plaintext, nonce)


def decrypt(key: bytes, ciphertext: bytes, nonce: bytes) -> bytes:
    """Module-level convenience wrapper around :class:`StreamCipher`."""
    return StreamCipher(key).decrypt(ciphertext, nonce)
