"""Key and identifier generation helpers.

Everything is driven by a caller-supplied :class:`numpy.random.Generator` so
that complete protocol runs are reproducible from a single seed — which is
what the tests and the experiment harness rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.node_info import FLOW_ID_SIZE, KEY_SIZE


def generate_key(rng: np.random.Generator, size: int = KEY_SIZE) -> bytes:
    """Generate ``size`` random key bytes."""
    return bytes(rng.integers(0, 256, size=size, dtype=np.uint8).tobytes())


def generate_nonce(rng: np.random.Generator, size: int = 8) -> bytes:
    """Generate a random nonce."""
    return generate_key(rng, size=size)


def generate_flow_id(rng: np.random.Generator) -> int:
    """Generate a random 64-bit flow identifier (never zero)."""
    value = 0
    while value == 0:
        value = int(rng.integers(1, 2 ** (8 * FLOW_ID_SIZE), dtype=np.uint64))
    return value


@dataclass(frozen=True)
class KeyMaterial:
    """Symmetric key plus the nonce prefix used for a flow's data messages."""

    key: bytes
    nonce_prefix: bytes

    @classmethod
    def generate(cls, rng: np.random.Generator) -> "KeyMaterial":
        return cls(key=generate_key(rng), nonce_prefix=generate_nonce(rng, size=4))

    def nonce_for(self, sequence: int) -> bytes:
        """Derive the 8-byte nonce for message ``sequence``."""
        return self.nonce_prefix + int(sequence).to_bytes(4, "big")
